// Shared helpers for the tgsim command-line tools: a tiny flag parser, the
// benchmark/workload factory, and binary image file I/O.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/apps.hpp"
#include "platform/platform.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"
#include "tg/source.hpp"
#include "tg/translator.hpp"

namespace tgsim::cli {

/// Strict unsigned parse (decimal, 0x hex or 0 octal): the whole string must
/// be consumed and in range, otherwise nullopt. Unlike bare strtoull this
/// rejects empty strings, signs, leading whitespace and trailing garbage —
/// "--jobs=abc" must be an error, not "one worker per hardware thread".
[[nodiscard]] inline std::optional<u64> parse_u64(const std::string& s) {
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const u64 v = std::strtoull(s.c_str(), &end, 0);
    if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
    return v;
}

/// parse_u64 or exit(1) with a message naming the offending flag/field.
inline u64 parse_u64_or_die(const std::string& s, const std::string& what) {
    const auto v = parse_u64(s);
    if (!v) {
        std::fprintf(stderr, "%s: invalid number '%s'\n", what.c_str(),
                     s.c_str());
        std::exit(1);
    }
    return *v;
}

/// Same, for 32-bit consumers: out-of-range values are a usage error, not a
/// silent truncation.
inline u32 parse_u32_or_die(const std::string& s, const std::string& what) {
    const u64 v = parse_u64_or_die(s, what);
    if (v > 0xFFFFFFFFull) {
        std::fprintf(stderr, "%s: value '%s' out of 32-bit range\n",
                     what.c_str(), s.c_str());
        std::exit(1);
    }
    return static_cast<u32>(v);
}

/// Parses "--key=value" / "--flag" style arguments; positional arguments are
/// collected in order.
class Args {
public:
    Args(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const auto eq = a.find('=');
                if (eq == std::string::npos)
                    flags_[a.substr(2)] = "";
                else
                    flags_[a.substr(2, eq - 2)] = a.substr(eq + 1);
            } else {
                positional_.push_back(a);
            }
        }
    }

    [[nodiscard]] bool has(const std::string& key) const {
        return flags_.count(key) != 0;
    }
    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback = "") const {
        const auto it = flags_.find(key);
        return it == flags_.end() ? fallback : it->second;
    }
    /// Numeric flag value; an unparsable value is a fatal usage error.
    [[nodiscard]] u64 get_u64(const std::string& key, u64 fallback) const {
        const auto it = flags_.find(key);
        if (it == flags_.end()) return fallback;
        return parse_u64_or_die(it->second, "--" + key);
    }
    /// 32-bit variant; values beyond u32 are a fatal usage error too.
    [[nodiscard]] u32 get_u32(const std::string& key, u32 fallback) const {
        const auto it = flags_.find(key);
        if (it == flags_.end()) return fallback;
        return parse_u32_or_die(it->second, "--" + key);
    }
    [[nodiscard]] const std::vector<std::string>& positional() const {
        return positional_;
    }
    /// Every parsed "--key[=value]" pair, for the option registry's
    /// unknown-flag rejection (OptionSet::check_or_help).
    [[nodiscard]] const std::map<std::string, std::string>& flags() const {
        return flags_;
    }

private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

// ---- declarative option registry -------------------------------------
//
// Each tool declares its options ONCE — name, value kind, help metavar,
// default and help line — in an OptionSet, then calls check_or_help(args)
// before doing any work. The registry supplies the three behaviours no
// hand-rolled parser kept consistent across tools:
//   - `--help` rendered from the declarations themselves, so the help
//     text cannot drift from what the tool actually accepts;
//   - unknown --flags rejected fatally (a typo like --jobz must not
//     silently run a default sweep for minutes);
//   - eager validation of numeric and closed-choice values, before any
//     simulation starts (same fail-fast contract as the typed getters,
//     and the same diagnostics — parse_u64_or_die / enum_from formats).
// Option *semantics* (defaults, cross-flag rules) stay in the typed
// getters below; the registry is the declaration surface, not a second
// parser.

struct OptionSpec {
    /// How check_or_help validates a supplied value. Text covers
    /// open-ended forms (paths, comma lists, "WxH" specs) that the tool's
    /// own getter validates with a context-specific diagnostic.
    enum class Kind : u8 { Flag, Number, Text, Choice };
    const char* name = "";    ///< flag name without the leading "--"
    Kind kind = Kind::Text;
    const char* arg = "";     ///< help metavar, e.g. "N", "WxH", "PATH"
    const char* fallback = ""; ///< default rendered in help; "" = none
    const char* help = "";    ///< one-line description
    std::vector<const char*> choices = {}; ///< Choice: the closed token set
};

class OptionSet {
public:
    OptionSet(std::string tool, std::string summary)
        : tool_(std::move(tool)), summary_(std::move(summary)) {}

    OptionSet& add(OptionSpec spec) {
        specs_.push_back(std::move(spec));
        return *this;
    }

    [[nodiscard]] const OptionSpec* find(const std::string& name) const {
        for (const OptionSpec& s : specs_)
            if (name == s.name) return &s;
        return nullptr;
    }

    void print_help(std::FILE* out) const {
        std::fprintf(out, "usage: %s [options]\n%s\n\noptions:\n",
                     tool_.c_str(), summary_.c_str());
        for (const OptionSpec& s : specs_) {
            std::string head = "  --" + std::string{s.name};
            if (s.kind != OptionSpec::Kind::Flag) {
                head += "=";
                head += s.kind == OptionSpec::Kind::Choice && s.arg[0] == '\0'
                            ? "VALUE"
                            : s.arg;
            }
            std::string tail = s.help;
            if (!s.choices.empty()) {
                tail += " (";
                for (std::size_t i = 0; i < s.choices.size(); ++i) {
                    if (i > 0) tail += "|";
                    tail += s.choices[i];
                }
                tail += ")";
            }
            if (s.fallback[0] != '\0')
                tail += std::string{" [default "} + s.fallback + "]";
            std::fprintf(out, "%-28s %s\n", head.c_str(), tail.c_str());
        }
        std::fprintf(out, "%-28s %s\n", "  --help", "show this help");
    }

    /// `--help` prints the generated help and exits 0; an undeclared flag
    /// or an invalid Number/Choice value is a fatal usage error. Call
    /// before any expensive work.
    void check_or_help(const Args& args) const {
        if (args.has("help")) {
            print_help(stdout);
            std::exit(0);
        }
        for (const auto& [name, value] : args.flags()) {
            const OptionSpec* spec = find(name);
            if (spec == nullptr) {
                std::fprintf(stderr, "%s: unknown option --%s (try --help)\n",
                             tool_.c_str(), name.c_str());
                std::exit(1);
            }
            switch (spec->kind) {
                case OptionSpec::Kind::Number:
                    (void)parse_u64_or_die(value, "--" + name);
                    break;
                case OptionSpec::Kind::Choice: {
                    bool ok = false;
                    std::string valid;
                    for (const char* c : spec->choices) {
                        ok |= value == c;
                        if (!valid.empty()) valid += ", ";
                        valid += c;
                    }
                    if (!ok) {
                        std::fprintf(stderr,
                                     "--%s: unknown value '%s' (valid: %s)\n",
                                     name.c_str(), value.c_str(),
                                     valid.c_str());
                        std::exit(1);
                    }
                    break;
                }
                case OptionSpec::Kind::Flag:
                case OptionSpec::Kind::Text: break;
            }
        }
    }

private:
    std::string tool_;
    std::string summary_;
    std::vector<OptionSpec> specs_;
};

/// Builds one of the paper's benchmarks by name.
inline std::optional<apps::Workload> make_workload(const std::string& app,
                                                   u32 cores, u32 size) {
    if (app == "cacheloop") return apps::make_cacheloop({cores, size});
    if (app == "sp_matrix") return apps::make_sp_matrix({size});
    if (app == "mp_matrix") return apps::make_mp_matrix({cores, size});
    if (app == "des") return apps::make_des({cores, size});
    return std::nullopt;
}

/// Per-app default --size, shared by every tool that runs a benchmark.
inline u32 default_size(const std::string& app) {
    if (app == "cacheloop") return 100000;
    if (app == "des") return 16;
    return 24;
}

/// Shared sweep-style flags, parsed in one place so tgsim_sweep and the
/// other tools cannot grow drifting copies:
///   --jobs=N    worker threads; 0 or absent = one per hardware thread
///   --json=PATH machine-readable report destination; empty = stdout only
inline u32 get_jobs(const Args& args) { return args.get_u32("jobs", 0); }

inline std::string json_path(const Args& args) { return args.get("json", ""); }

/// Splits a comma-separated flag value ("2,4,8" -> {"2","4","8"}); empty
/// input yields no elements.
inline std::vector<std::string> split_list(const std::string& value) {
    std::vector<std::string> out;
    std::istringstream ss{value};
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) out.push_back(tok);
    }
    return out;
}

/// Shared string→enum dispatch: maps a value through an explicit
/// (token, value) table, or exits listing every valid choice. The tier,
/// process and topology flags all route through here, so the tools cannot
/// grow drifting hand-rolled parsers with inconsistent diagnostics.
/// `extra_choices` names accepted forms beyond the table (e.g. the
/// topology's "file:PATH", which carries a payload and cannot be a table
/// entry).
template <typename E>
[[nodiscard]] inline E enum_from(
    const std::string& what, const std::string& name,
    std::initializer_list<std::pair<const char*, E>> choices,
    const char* extra_choices = nullptr) {
    for (const auto& choice : choices)
        if (name == choice.first) return choice.second;
    std::string valid;
    for (const auto& choice : choices) {
        if (!valid.empty()) valid += ", ";
        valid += choice.first;
    }
    if (extra_choices != nullptr) {
        valid += ", ";
        valid += extra_choices;
    }
    std::fprintf(stderr, "%s: unknown value '%s' (valid: %s)\n", what.c_str(),
                 name.c_str(), valid.c_str());
    std::exit(1);
}

/// enum_from over a flag with a default, e.g.
/// get_enum(args, "tier", "cycle", {{"cycle", Tier::Cycle}, ...}).
template <typename E>
[[nodiscard]] inline E get_enum(
    const Args& args, const std::string& flag, const std::string& fallback,
    std::initializer_list<std::pair<const char*, E>> choices) {
    return enum_from("--" + flag, args.get(flag, fallback), choices);
}

/// Parses one mesh spec: "auto" (dimensions chosen by the platform) or
/// "WxH", e.g. "3x3". Shared by tgsim_sweep (candidate grids) and
/// tgsim_patterns (logical core grid — which rejects "auto" itself).
inline std::optional<ic::XpipesConfig> parse_mesh(const std::string& spec,
                                                  u32 fifo_depth) {
    ic::XpipesConfig mesh;
    mesh.width = 0;
    mesh.height = 0;
    mesh.fifo_depth = fifo_depth;
    if (spec == "auto") return mesh;
    const auto x = spec.find('x');
    if (x == std::string::npos || x == 0 || x + 1 == spec.size())
        return std::nullopt;
    char* end = nullptr;
    mesh.width = static_cast<u32>(std::strtoul(spec.c_str(), &end, 10));
    if (end != spec.c_str() + x) return std::nullopt;
    mesh.height =
        static_cast<u32>(std::strtoul(spec.c_str() + x + 1, &end, 10));
    if (*end != '\0') return std::nullopt; // reject trailing junk ("3x2x2")
    if (mesh.width == 0 || mesh.height == 0) return std::nullopt;
    return mesh;
}

/// Strict double parse for rate lists; the whole string must be consumed,
/// the value finite and non-negative.
inline std::optional<double> parse_rate(const std::string& s) {
    if (s.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
    if (!(v >= 0.0) || v > 1.0e9) return std::nullopt;
    return v;
}

/// Shared funnel flags (docs/analytic.md), parsed in one place so
/// tgsim_sweep and future screening tools cannot grow drifting copies:
///   --tier=cycle|analytic|funnel   evaluator tier (default cycle)
///   --funnel-top=K                 cycle-tier survivor budget (default 16)
/// Bad values are fatal usage errors, never silent defaults.
inline sweep::Tier get_tier(const Args& args) {
    return get_enum<sweep::Tier>(args, "tier", "cycle",
                                 {{"cycle", sweep::Tier::Cycle},
                                  {"analytic", sweep::Tier::Analytic},
                                  {"funnel", sweep::Tier::Funnel}});
}

inline u32 get_funnel_top(const Args& args) {
    const u32 top = args.get_u32("funnel-top", 16);
    if (top == 0) {
        std::fprintf(stderr, "--funnel-top: must be nonzero\n");
        std::exit(1);
    }
    return top;
}

/// Shared distributed-campaign flag (docs/sweep.md), parsed in one place
/// so tgsim_sweep and future campaign tools cannot grow drifting copies:
///   --shard=k/N   evaluate only candidates with index % N == k (original
///                 indices are kept, so shard reports merge byte-identically
///                 via tgsim_merge). Absent = the whole grid.
/// A malformed spec is a fatal usage error, never a silent full run.
inline sweep::ShardSpec get_shard(const Args& args) {
    const std::string spec = args.get("shard", "");
    if (spec.empty() && !args.has("shard")) return {};
    const auto shard = sweep::parse_shard(spec);
    if (!shard) {
        std::fprintf(
            stderr,
            "--shard: bad spec '%s' (need k/N with k < N, e.g. 0/3)\n",
            spec.c_str());
        std::exit(1);
    }
    return *shard;
}

/// Registers the shared traffic-source flags (docs/traffic.md) on a
/// tool's option set — declared ONCE here so tgsim_patterns and
/// tgsim_sweep cannot grow drifting spellings of the source-mode axis:
///   --source=closed|open     loop mode (default closed: one outstanding
///                            transaction per core, the pre-open behavior)
///   --max-outstanding=N      open loop: cap on in-flight read packets per
///                            master NI (0 = unbounded)
///   --pending-limit=N        open loop: per-master pending-packet queue
///                            bound (a full queue stalls the source)
inline void add_source_options(OptionSet& set) {
    set.add({"source", OptionSpec::Kind::Choice, "MODE", "closed",
             "traffic-source loop mode", {"closed", "open"}});
    set.add({"max-outstanding", OptionSpec::Kind::Number, "N", "0",
             "open loop: in-flight read packets per master NI cap"
             " (0 = unbounded)"});
    set.add({"pending-limit", OptionSpec::Kind::Number, "N", "64",
             "open loop: per-master pending-packet queue bound"});
}

/// The parsed tg::SourceConfig for the flags above. Open-only knobs with
/// --source=closed are a fatal usage error, not silently ignored (the
/// closed generator is inherently one-outstanding; accepting the flag
/// would misreport what ran). The offered rate is NOT set here — the
/// sweep's --rates axis owns it (sweep::make_rate_sweep).
[[nodiscard]] inline tg::SourceConfig get_source(const Args& args) {
    tg::SourceConfig s;
    s.mode = get_enum<tg::SourceMode>(
        args, "source", "closed",
        {{"closed", tg::SourceMode::Closed}, {"open", tg::SourceMode::Open}});
    s.max_outstanding = args.get_u32("max-outstanding", 0);
    s.pending_limit = args.get_u32("pending-limit", 64);
    if (!s.open() &&
        (args.has("max-outstanding") || args.has("pending-limit"))) {
        std::fprintf(stderr,
                     "--max-outstanding/--pending-limit need --source=open\n");
        std::exit(1);
    }
    if (s.pending_limit == 0) {
        std::fprintf(stderr, "--pending-limit: must be nonzero\n");
        std::exit(1);
    }
    return s;
}

/// Shared fault-injection flags (docs/faults.md), parsed in one place so
/// tgsim_patterns and tgsim_sweep cannot grow drifting copies:
///   --fault-rate=R[,R2,...]  total per-flit fault probability in [0, 1],
///                            split evenly across corruption, drop and
///                            transient-stall faults; 0 (the default)
///                            disables the fault layer entirely.
///                            tgsim_sweep pattern mode crosses a comma list
///                            into the candidate grid as a sweep axis.
///   --fault-seed=N           base seed of the deterministic fault stream
///                            (default 0); a fixed seed reproduces the same
///                            fault sites at any --jobs and in any --shard.
[[nodiscard]] inline std::vector<double> get_fault_rates(const Args& args) {
    std::vector<double> out;
    for (const std::string& tok :
         split_list(args.get("fault-rate", "0"))) {
        const auto r = parse_rate(tok);
        if (!r || *r > 1.0) {
            std::fprintf(stderr,
                         "bad --fault-rate entry '%s' (need [0, 1])\n",
                         tok.c_str());
            std::exit(1);
        }
        out.push_back(*r);
    }
    if (out.empty()) {
        std::fprintf(stderr, "--fault-rate is empty\n");
        std::exit(1);
    }
    return out;
}

[[nodiscard]] inline u64 get_fault_seed(const Args& args) {
    return args.get_u64("fault-seed", 0);
}

/// FaultConfig for one axis point: the total rate is split evenly across
/// the three fault kinds, so one scalar sweeps all of them and FaultModel's
/// "rates sum to <= 1" validation holds for any total in [0, 1].
[[nodiscard]] inline ic::FaultConfig make_fault(double rate, u64 seed) {
    ic::FaultConfig f;
    f.corrupt_rate = f.drop_rate = f.stall_rate = rate / 3.0;
    f.seed = seed;
    return f;
}

inline std::optional<platform::IcKind> parse_ic(const std::string& name) {
    if (name == "amba") return platform::IcKind::Amba;
    if (name == "crossbar") return platform::IcKind::Crossbar;
    if (name == "xpipes") return platform::IcKind::Xpipes;
    return std::nullopt;
}

inline std::optional<tg::TgMode> parse_mode(const std::string& name) {
    if (name == "clone") return tg::TgMode::Clone;
    if (name == "timeshift") return tg::TgMode::Timeshift;
    if (name == "reactive") return tg::TgMode::Reactive;
    return std::nullopt;
}

/// Binary image files: raw little-endian 32-bit words.
inline void save_image(const std::vector<u32>& image, const std::string& path) {
    std::ofstream out{path, std::ios::binary};
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    for (const u32 w : image) {
        const char bytes[4] = {
            static_cast<char>(w & 0xFF), static_cast<char>((w >> 8) & 0xFF),
            static_cast<char>((w >> 16) & 0xFF),
            static_cast<char>((w >> 24) & 0xFF)};
        out.write(bytes, 4);
    }
}

inline std::vector<u32> load_image(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    std::vector<u32> image;
    char bytes[4];
    while (in.read(bytes, 4)) {
        image.push_back(static_cast<u32>(static_cast<u8>(bytes[0])) |
                        (static_cast<u32>(static_cast<u8>(bytes[1])) << 8) |
                        (static_cast<u32>(static_cast<u8>(bytes[2])) << 16) |
                        (static_cast<u32>(static_cast<u8>(bytes[3])) << 24));
    }
    return image;
}

inline std::string read_text_file(const std::string& path) {
    std::ifstream in{path};
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

inline void write_text_file(const std::string& path, const std::string& text) {
    std::ofstream out{path};
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    out << text;
}

/// One parsed --topology token (docs/topology.md):
///   mesh       the XY-routed 2D mesh (default; campaign identities stay
///              byte-compatible with pre-topology reports)
///   torus      2D torus with wrap links and minimal XY routing
///   file:PATH  table-routed graph in the docs/topology.md text format
struct TopologyChoice {
    ic::TopologyKind kind = ic::TopologyKind::Mesh;
    std::shared_ptr<const ic::GraphSpec> graph; ///< engaged iff kind == Table
};

/// Parses one --topology token. The graph file is loaded and validated
/// eagerly, so a malformed or disconnected graph is a fatal usage error
/// before any simulation starts, and every sweep worker shares the single
/// parsed spec.
[[nodiscard]] inline TopologyChoice parse_topology_or_die(
    const std::string& token, const std::string& what) {
    TopologyChoice out;
    if (token.rfind("file:", 0) == 0) {
        const std::string path = token.substr(5);
        if (path.empty()) {
            std::fprintf(stderr, "%s: empty graph path in '%s'\n",
                         what.c_str(), token.c_str());
            std::exit(1);
        }
        std::string err;
        auto spec = ic::parse_graph(read_text_file(path), path, &err);
        if (!spec) {
            std::fprintf(stderr, "%s: %s\n", what.c_str(), err.c_str());
            std::exit(1);
        }
        out.kind = ic::TopologyKind::Table;
        out.graph = std::make_shared<const ic::GraphSpec>(std::move(*spec));
        return out;
    }
    out.kind = enum_from<ic::TopologyKind>(
        what, token,
        {{"mesh", ic::TopologyKind::Mesh},
         {"torus", ic::TopologyKind::Torus}},
        "file:PATH");
    return out;
}

/// The --topology axis: a comma list for tgsim_sweep's candidate grid, a
/// single value for tgsim_patterns. Default is the plain mesh.
[[nodiscard]] inline std::vector<TopologyChoice> get_topologies(
    const Args& args) {
    std::vector<TopologyChoice> out;
    for (const std::string& tok : split_list(args.get("topology", "mesh")))
        out.push_back(parse_topology_or_die(tok, "--topology"));
    if (out.empty()) {
        std::fprintf(stderr, "--topology is empty\n");
        std::exit(1);
    }
    return out;
}

/// Fatal parse-time capacity check: an explicit fabric must host n_cores
/// cores plus the shared memory and semaphore bank
/// (platform::xpipes_nodes_needed). A --mesh too small for the --grid used
/// to surface only as a mid-sweep setup error — or a Platform throw after
/// minutes of other candidates; now it fails in milliseconds with the
/// numbers spelled out. Auto-sized meshes always fit and pass through.
inline void check_fabric_capacity(const ic::XpipesConfig& fabric, u32 n_cores,
                                  const std::string& what) {
    u32 nodes = 0;
    if (fabric.topology == ic::TopologyKind::Table) {
        nodes = fabric.graph ? fabric.graph->nodes : 0;
    } else {
        if (fabric.width == 0 || fabric.height == 0) return; // auto-sized
        nodes = fabric.width * fabric.height;
    }
    const u32 needed = platform::xpipes_nodes_needed(n_cores);
    if (nodes < needed) {
        std::fprintf(stderr,
                     "%s: %u node(s) cannot host the %u-core grid plus 2 "
                     "shared slaves (need >= %u nodes)\n",
                     what.c_str(), nodes, n_cores, needed);
        std::exit(1);
    }
}

/// Parses repeated --poll=base:size:retry_cmp:value:idle specs, e.g.
/// --poll=0x30000000:256:eq:0:1
inline std::vector<tg::PollSpec> parse_polls(const std::vector<std::string>& raw) {
    std::vector<tg::PollSpec> polls;
    for (const std::string& spec : raw) {
        std::vector<std::string> parts;
        std::istringstream ss{spec};
        std::string tok;
        while (std::getline(ss, tok, ':')) parts.push_back(tok);
        if (parts.size() != 5) {
            std::fprintf(stderr, "bad --poll spec '%s'\n", spec.c_str());
            std::exit(1);
        }
        tg::PollSpec p;
        p.base = parse_u32_or_die(parts[0], "--poll base");
        p.size = parse_u32_or_die(parts[1], "--poll size");
        if (parts[2] == "eq") p.retry_cmp = tg::TgCmp::Eq;
        else if (parts[2] == "ne") p.retry_cmp = tg::TgCmp::Ne;
        else if (parts[2] == "ltu") p.retry_cmp = tg::TgCmp::Ltu;
        else if (parts[2] == "geu") p.retry_cmp = tg::TgCmp::Geu;
        else {
            std::fprintf(stderr, "bad --poll cmp '%s'\n", parts[2].c_str());
            std::exit(1);
        }
        p.retry_value = parse_u32_or_die(parts[3], "--poll value");
        p.inter_poll_idle = parse_u32_or_die(parts[4], "--poll idle");
        polls.push_back(p);
    }
    return polls;
}

} // namespace tgsim::cli
