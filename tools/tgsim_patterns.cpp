// tgsim-patterns — synthetic traffic-pattern sweeps with load–latency
// instrumentation (docs/traffic.md).
//
//   tgsim-patterns --pattern=transpose --mesh=4x4
//                  [--rates=0.005,0.01,...] [--process=uniform|poisson|bursty]
//                  [--packets=N] [--reads=F] [--burst-frac=F] [--burst-len=N]
//                  [--hotspot=CORE] [--hotspot-frac=F] [--fifo=N]
//                  [--topology=mesh|torus|file:PATH]
//                  [--source=closed|open] [--max-outstanding=N]
//                  [--pending-limit=N]
//                  [--fault-rate=R] [--fault-seed=N]
//                  [--jobs=N] [--json=PATH] [--max-cycles=N]
//
// --source picks the loop mode of every traffic source (docs/traffic.md):
// closed (default) is the paper's one-outstanding-transaction generator;
// open keeps offering at the configured rate regardless of completions, so
// the *network* — not the generator — saturates, and every row carries the
// source-queue / in-network latency split (the hockey-stick curves).
//
// --mesh gives the *logical core grid* (n_cores = W*H); the physical ×pipes
// mesh is laid out row-major with the same width, cores on nodes [0, W*H)
// and the shared memory + semaphore bank on the extra row — so logical grid
// coordinates equal physical mesh coordinates and the classic destination
// functions (transpose, tornado, ...) stress exactly the links they name.
// --topology picks the fabric the grid maps onto (docs/topology.md): the
// default XY mesh, a torus with the same dimensions, or a table-routed
// graph file (whose node count must host the cores plus the two shared
// slaves).
//
// Each --rates point becomes one sweep candidate (sweep::make_rate_sweep)
// evaluated by sweep::SweepDriver --jobs at a time; results are
// bit-identical at any --jobs (bench/pattern_sweep.cpp enforces this in
// CI). The tool prints the load–latency table, reports the saturation
// throughput (sweep::find_saturation), and optionally writes the standard
// sweep JSON report with the latency columns.
//
// --fault-rate=R enables deterministic fault injection (docs/faults.md) at
// every rate point: total per-flit fault probability R split evenly across
// corruption, drop and stall, recovered by the NI retry/checksum protocol.
// A reliability table (delivered ratio, retries, lost transactions) is
// printed and the JSON report grows the fault_* columns.
#include <cstdio>

#include "cli.hpp"
#include "sweep/sweep.hpp"
#include "tg/patterns.hpp"

using namespace tgsim;

namespace {

cli::OptionSet options() {
    using K = cli::OptionSpec::Kind;
    cli::OptionSet set{
        "tgsim-patterns",
        "synthetic traffic-pattern sweeps with load-latency instrumentation"};
    set.add({"pattern", K::Choice, "NAME", "uniform_random",
             "traffic pattern",
             {"uniform_random", "bit_complement", "transpose", "shuffle",
              "tornado", "neighbor", "hotspot"}})
        .add({"mesh", K::Text, "WxH", "4x4", "logical core grid"})
        .add({"rates", K::Text, "R,R,...",
              "0.005,0.01,0.02,0.04,0.08,0.16,0.32,0.64,1.0",
              "offered-rate ladder, strictly ascending"})
        .add({"process", K::Choice, "NAME", "poisson", "arrival process",
              {"poisson", "uniform", "bursty"}})
        .add({"packets", K::Number, "N", "2000", "transactions per core"})
        .add({"reads", K::Text, "F", "0.5", "read fraction in [0, 1]"})
        .add({"burst-frac", K::Text, "F", "0",
              "fraction of transactions that burst"})
        .add({"burst-len", K::Number, "N", "4", "beats per burst"})
        .add({"hotspot", K::Number, "CORE", "0", "hotspot destination core"})
        .add({"hotspot-frac", K::Text, "F", "0.5",
              "share of traffic aimed at the hotspot"})
        .add({"fifo", K::Number, "N", "4", "router FIFO depth"})
        .add({"topology", K::Text, "KIND", "mesh",
              "fabric topology: mesh|torus|file:PATH"})
        .add({"fault-rate", K::Text, "R", "0",
              "total per-flit fault probability in [0, 1]"})
        .add({"fault-seed", K::Number, "N", "0",
              "deterministic fault-stream seed"})
        .add({"jobs", K::Number, "N", "0",
              "worker threads (0 = one per hardware thread)"})
        .add({"json", K::Text, "PATH", "", "machine-readable report"})
        .add({"max-cycles", K::Number, "N", "100000000",
              "per-candidate cycle budget"});
    cli::add_source_options(set);
    return set;
}

} // namespace

int main(int argc, char** argv) {
    const cli::Args args{argc, argv};
    options().check_or_help(args);

    const std::string pattern_name = args.get("pattern", "uniform_random");
    const auto pattern = tg::parse_pattern(pattern_name);
    if (!pattern) {
        std::fprintf(stderr,
                     "unknown --pattern '%s' (uniform_random|bit_complement|"
                     "transpose|shuffle|tornado|neighbor|hotspot)\n",
                     pattern_name.c_str());
        return 1;
    }

    const std::string mesh_spec = args.get("mesh", "4x4");
    const u32 fifo = args.get_u32("fifo", 4);
    const auto mesh = cli::parse_mesh(mesh_spec, fifo);
    if (!mesh || mesh->width == 0) { // patterns need explicit dimensions
        std::fprintf(stderr, "bad --mesh spec '%s' (WxH, e.g. 4x4)\n",
                     mesh_spec.c_str());
        return 1;
    }

    tg::PatternConfig pc;
    pc.pattern = *pattern;
    pc.width = mesh->width;
    pc.height = mesh->height;
    const std::string process = args.get("process", "poisson");
    pc.process = cli::get_enum<tg::ArrivalProcess>(
        args, "process", "poisson",
        {{"poisson", tg::ArrivalProcess::Poisson},
         {"uniform", tg::ArrivalProcess::Uniform},
         {"bursty", tg::ArrivalProcess::Bursty}});
    pc.packets_per_core = args.get_u64("packets", 2000);
    pc.burst_len = static_cast<u16>(args.get_u32("burst-len", 4));
    pc.hotspot_core = args.get_u32("hotspot", 0);
    if (const std::string v = args.get("reads", ""); !v.empty())
        pc.read_fraction = cli::parse_rate(v).value_or(-1.0);
    if (const std::string v = args.get("burst-frac", ""); !v.empty())
        pc.burst_fraction = cli::parse_rate(v).value_or(-1.0);
    if (const std::string v = args.get("hotspot-frac", ""); !v.empty())
        pc.hotspot_fraction = cli::parse_rate(v).value_or(-1.0);
    if (pc.read_fraction < 0.0 || pc.read_fraction > 1.0 ||
        pc.burst_fraction < 0.0 || pc.burst_fraction > 1.0 ||
        pc.hotspot_fraction < 0.0 || pc.hotspot_fraction > 1.0) {
        std::fprintf(stderr, "bad fraction flag (must be in [0, 1])\n");
        return 1;
    }

    // Offered-rate ladder, ascending (find_saturation reads it in order).
    std::vector<double> rates;
    for (const std::string& tok : cli::split_list(args.get(
             "rates", "0.005,0.01,0.02,0.04,0.08,0.16,0.32,0.64,1.0"))) {
        const auto r = cli::parse_rate(tok);
        if (!r || *r <= 0.0 || *r > 1.0) {
            std::fprintf(stderr, "bad --rates entry '%s' (need (0,1])\n",
                         tok.c_str());
            return 1;
        }
        if (!rates.empty() && *r <= rates.back()) {
            std::fprintf(stderr, "--rates must be strictly ascending\n");
            return 1;
        }
        rates.push_back(*r);
    }
    if (rates.empty()) {
        std::fprintf(stderr, "--rates is empty\n");
        return 1;
    }
    pc.injection_rate = rates.front();

    const auto fault_rates = cli::get_fault_rates(args);
    if (fault_rates.size() != 1) {
        std::fprintf(stderr,
                     "tgsim_patterns takes a single --fault-rate; use "
                     "tgsim_sweep --pattern for a fault-rate axis\n");
        return 1;
    }
    const double fault_rate = fault_rates.front();
    const u64 fault_seed = cli::get_fault_seed(args);

    const tg::SourceConfig source = cli::get_source(args);
    if (source.open() && fault_rate > 0.0) {
        // The open-loop NI and the fault retry protocol both own the tx
        // queue; the combination is rejected at configure time, so fail at
        // parse time with the reason spelled out.
        std::fprintf(stderr,
                     "--source=open does not compose with --fault-rate yet "
                     "(both modes rewrite the master NI send path)\n");
        return 1;
    }

    const u32 n_cores = pc.width * pc.height;
    const std::string topology_spec = args.get("topology", "mesh");
    const cli::TopologyChoice topo =
        cli::parse_topology_or_die(topology_spec, "--topology");
    platform::PlatformConfig base;
    base.ic = platform::IcKind::Xpipes;
    base.xpipes.width = pc.width;
    base.xpipes.height = platform::xpipes_height_for(n_cores, pc.width);
    base.xpipes.topology = topo.kind;
    base.xpipes.graph = topo.graph;
    if (topo.kind == ic::TopologyKind::Table)
        base.xpipes.width = base.xpipes.height = 0; // shape comes from the graph
    cli::check_fabric_capacity(base.xpipes, n_cores, "--topology");
    base.xpipes.fifo_depth = fifo;
    base.xpipes.fault = cli::make_fault(fault_rate, fault_seed);
    const bool faults_on = base.xpipes.fault.enabled();

    apps::Workload context; // patterns compute nothing: empty images/checks
    context.name = "pattern_" + std::string{tg::to_string(pc.pattern)};

    sweep::SweepOptions opts;
    opts.jobs = cli::get_jobs(args);
    opts.max_cycles = args.get_u64("max-cycles", 100'000'000);

    std::vector<sweep::SweepResult> results;
    try {
        const sweep::SweepDriver driver{pc, context};
        const auto candidates = sweep::make_rate_sweep(base, rates, source);
        const u32 jobs = sweep::resolve_jobs(opts.jobs, candidates.size());
        std::printf("%s on a %ux%u core grid (%ux%u mesh, fifo %u), "
                    "%llu packets/core, %s arrivals, %s sources, %u workers\n\n",
                    std::string{tg::to_string(pc.pattern)}.c_str(), pc.width,
                    pc.height, base.xpipes.width, base.xpipes.height, fifo,
                    static_cast<unsigned long long>(pc.packets_per_core),
                    process.c_str(),
                    std::string{tg::to_string(source.mode)}.c_str(), jobs);
        results = driver.run(candidates, opts);

        std::printf("%-12s %10s %10s %9s %8s %8s %8s %10s\n", "candidate",
                    "offered", "accepted", "mean lat", "p50", "p99",
                    "max", "NI wait");
        bool setup_error = false;
        for (const sweep::SweepResult& r : results) {
            if (r.failure == sweep::FailureKind::SetupError) {
                std::printf("%-12s SETUP ERROR: %s\n", r.name.c_str(),
                            r.error.c_str());
                setup_error = true;
                continue;
            }
            if (!r.ok()) {
                std::printf("%-12s %s\n", r.name.c_str(), r.error.c_str());
                continue;
            }
            std::printf("%-12s %10.4f %10.4f %9.1f %8llu %8llu %8llu %10llu\n",
                        r.name.c_str(), r.offered_rate, r.accepted_rate,
                        r.lat_mean,
                        static_cast<unsigned long long>(r.lat_p50),
                        static_cast<unsigned long long>(r.lat_p99),
                        static_cast<unsigned long long>(r.lat_max),
                        static_cast<unsigned long long>(r.contention_cycles));
        }

        if (faults_on) {
            std::printf("\n%-12s %10s %10s %8s %8s %8s %8s\n", "candidate",
                        "injected", "delivered", "recov", "retries", "lost",
                        "dropped");
            for (const sweep::SweepResult& r : results) {
                if (!r.ok() || !r.has_faults) continue;
                std::printf(
                    "%-12s %10llu %9.4f%% %8llu %8llu %8llu %8llu\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.fault_injected),
                    100.0 * r.delivered_ratio,
                    static_cast<unsigned long long>(r.fault_recovered),
                    static_cast<unsigned long long>(r.fault_retries),
                    static_cast<unsigned long long>(r.fault_lost),
                    static_cast<unsigned long long>(r.fault_dropped));
            }
        }

        if (source.open()) {
            // The open-loop split: in-network latency is the saturation
            // signal; source-queue latency shows where offered load waits.
            std::printf("\n%-12s %10s %8s %8s %10s %10s %9s\n", "candidate",
                        "net mean", "net p50", "net p99", "srcq mean",
                        "srcq p99", "pend pk");
            for (const sweep::SweepResult& r : results) {
                if (!r.ok() || !r.has_open) continue;
                std::printf(
                    "%-12s %10.1f %8llu %8llu %10.1f %10llu %9llu\n",
                    r.name.c_str(), r.net_lat_mean,
                    static_cast<unsigned long long>(r.net_lat_p50),
                    static_cast<unsigned long long>(r.net_lat_p99),
                    r.sq_lat_mean,
                    static_cast<unsigned long long>(r.sq_lat_p99),
                    static_cast<unsigned long long>(r.pending_peak));
            }
        }

        const sweep::SaturationPoint sat = sweep::find_saturation(results);
        if (sat.found)
            std::printf("\nsaturation at offered %.4f: throughput %.4f "
                        "txn/core/cycle (mean latency %.1f cycles)\n",
                        sat.offered, sat.throughput, sat.mean_latency);
        else
            std::printf("\nno saturation in the swept range; max accepted "
                        "%.4f txn/core/cycle at offered %.4f\n",
                        sat.throughput, sat.offered);

        const std::string json = cli::json_path(args);
        if (!json.empty()) {
            sweep::SweepMeta meta;
            meta.app = context.name + " " + mesh_spec;
            // Source mode is campaign identity (docs/traffic.md): open and
            // closed shards must never merge or resume into each other.
            // describe() is empty for closed sources, so pre-open reports
            // stay byte-identical.
            meta.app += tg::describe(source);
            if (topo.kind != ic::TopologyKind::Mesh) {
                // Topology is campaign identity (docs/topology.md); mesh
                // runs keep the pre-topology app string byte-identical.
                meta.app += " topo=" + topology_spec;
            }
            if (faults_on) {
                // The fault axis is campaign identity: reports that differ
                // in it must never merge or resume into each other.
                char fb[48];
                std::snprintf(fb, sizeof fb, " fault=%.4g@%llu", fault_rate,
                              static_cast<unsigned long long>(fault_seed));
                meta.app += fb;
            }
            meta.n_cores = n_cores;
            meta.jobs = jobs;
            meta.max_cycles = opts.max_cycles;
            meta.tier = opts.tier;
            meta.seed = opts.seed;
            meta.n_candidates = static_cast<u32>(results.size());
            if (!sweep::write_json_report(results, meta, json)) {
                std::fprintf(stderr, "failed to write %s\n", json.c_str());
                return 1;
            }
            std::printf("wrote %s (%zu rate points)\n", json.c_str(),
                        results.size());
        }
        return setup_error ? 1 : 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
